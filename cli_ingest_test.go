package memotable_test

// End-to-end tests of the live-ingestion CLI surface: tracecap -stdin /
// -listen must replay a streamed v2 trace into the live banks, print
// snapshots identical to the offline comparator (memosim -ingest), seal
// settled streams into the trace store, and classify torn or corrupt
// streams with exit code 3.

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runCLIStdin is runCLI with bytes piped into the process's stdin.
func runCLIStdin(t *testing.T, stdin []byte, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdin = bytes.NewReader(stdin)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestTracecapIngestStdinMatchesOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	dir := t.TempDir()
	path := captureTrace(t, dir, "v2")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	liveOut, liveErr, code := runCLIStdin(t, data, cliBin(t, "tracecap"), "-stdin")
	if code != 0 {
		t.Fatalf("tracecap -stdin exited %d: %s", code, liveErr)
	}
	if !strings.Contains(liveOut, "memo-table hit ratios") || !strings.Contains(liveOut, "speedup") {
		t.Fatalf("live snapshot missing banks:\n%s", liveOut)
	}
	if !strings.Contains(liveErr, "ingested ") {
		t.Fatalf("stderr = %q, want ingest summary", liveErr)
	}

	// The acceptance differential: the offline comparator renders the
	// byte-identical final snapshot from the same stream bytes.
	offOut, offErr, code := runCLI(t, nil, cliBin(t, "memosim"), "-ingest", path)
	if code != 0 {
		t.Fatalf("memosim -ingest exited %d: %s", code, offErr)
	}
	if liveOut != offOut {
		t.Fatalf("live and offline snapshots differ:\n--- live ---\n%s\n--- offline ---\n%s", liveOut, offOut)
	}
}

func TestTracecapIngestListenSocket(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	dir := t.TempDir()
	path := captureTrace(t, dir, "v2")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Unix socket paths are length-limited; keep it short.
	sock := filepath.Join(os.TempDir(), fmt.Sprintf("tcap-%d.sock", os.Getpid()))
	defer func() { _ = os.Remove(sock) }()

	storeDir := t.TempDir()
	cmd := exec.Command(cliBin(t, "tracecap"),
		"-listen", "unix:"+sock, "-snapshot", "5000", "-store", storeDir, "-seal", "livekey")
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var conn net.Conn
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err = net.Dial("unix", sock)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("socket never came up: %v (stderr: %s)", err, stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Dribble the stream in small chunks, like a real producer.
	for off := 0; off < len(data); off += 8 << 10 {
		end := off + 8<<10
		if end > len(data) {
			end = len(data)
		}
		if _, err := conn.Write(data[off:end]); err != nil {
			t.Fatalf("writing stream: %v", err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("tracecap -listen failed: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "memo-table hit ratios") {
		t.Fatalf("listen snapshot missing banks:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), `sealed stream stored under "livekey"`) {
		t.Fatalf("stderr = %q, want seal confirmation", stderr.String())
	}

	// The sealed store entry must be the streamed bytes exactly (plus
	// the store's 16-byte seal trailer) — the live session has become a
	// warm, byte-identical cache entry of the direct capture.
	entries, err := filepath.Glob(filepath.Join(storeDir, "t-*.mtrc"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries = %v (err %v), want exactly one", entries, err)
	}
	stored, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(data)+16 || !bytes.Equal(stored[:len(data)], data) {
		t.Fatalf("store entry body (%d bytes) differs from direct capture (%d bytes)", len(stored), len(data))
	}
}

func TestTracecapIngestFailureModes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and executes command binaries")
	}
	dir := t.TempDir()
	path := captureTrace(t, dir, "v2")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x01
	bin := cliBin(t, "tracecap")

	t.Run("usage", func(t *testing.T) {
		for _, args := range [][]string{
			{"-listen", "unix:/tmp/x.sock", "-stdin"},
			{"-stdin", "-out", filepath.Join(dir, "x.mtrc")},
			{"-stdin", "-seal", ""},
		} {
			if _, stderr, code := runCLIStdin(t, nil, bin, args...); code != 2 {
				t.Fatalf("%v: exit %d (stderr %s), want 2", args, code, stderr)
			}
		}
	})

	t.Run("torn stream exits 3", func(t *testing.T) {
		_, stderr, code := runCLIStdin(t, data[:len(data)-50], bin, "-stdin")
		if code != 3 || !strings.Contains(stderr, "torn") {
			t.Fatalf("exit %d stderr %q, want 3 with torn tail", code, stderr)
		}
	})

	t.Run("corrupt stream exits 3", func(t *testing.T) {
		_, stderr, code := runCLIStdin(t, corrupt, bin, "-stdin")
		if code != 3 {
			t.Fatalf("exit %d stderr %q, want 3", code, stderr)
		}
	})

	t.Run("injected ingest fault exits 1", func(t *testing.T) {
		_, stderr, code := runCLIStdin(t, data, bin, "-stdin", "-faults", "seed=1;ingest.frame:count=1")
		if code != 1 || !strings.Contains(stderr, "injected fault") {
			t.Fatalf("exit %d stderr %q, want 1 with injected fault", code, stderr)
		}
	})

	t.Run("memosim -ingest corrupt exits 3", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.mtrc")
		if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		_, stderr, code := runCLI(t, nil, cliBin(t, "memosim"), "-ingest", bad)
		if code != 3 {
			t.Fatalf("exit %d stderr %q, want 3", code, stderr)
		}
	})

	t.Run("memosim -ingest missing file exits 1", func(t *testing.T) {
		_, _, code := runCLI(t, nil, cliBin(t, "memosim"), "-ingest", filepath.Join(dir, "absent.mtrc"))
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
	})
}
