package memotable_test

// Replay-delivery throughput trajectory: the same fused 8-sink geometry
// sweep measured under serial delivery (fan-out 1, the pre-PR-8 path)
// and under the fan-out pipeline. BenchmarkReplayDelivery* feeds the CI
// bench smoke; TestBenchReplayFanout additionally writes the
// machine-readable BENCH_replay.json when MEMOTABLE_BENCH_REPLAY names
// an output path, and asserts the fan-out regime is not slower than
// serial at 8 sinks (within 5% measurement noise — on a single-core
// runner the two regimes are equal by construction, the pipeline can
// only buy wall-clock where GOMAXPROCS > 1).

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"memotable"
	"memotable/internal/experiments"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/trace"
)

const (
	benchReplayEvents = 512 * 1024
	benchReplaySinks  = 8
	benchReplayKey    = "bench-replay"
)

// benchReplayCapture is the measured workload: an even mix of the four
// memoizable classes over a 512-value operand pool, so each sink's memo
// tables run their realistic hit/miss blend.
func benchReplayCapture(s trace.Sink) {
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 16
	}
	for i := 0; i < benchReplayEvents; i++ {
		r1, r2 := next()%512, next()%512
		var ev trace.Event
		switch i % 4 {
		case 0:
			ev = trace.Event{Op: isa.OpIMul, A: r1 + 2, B: r2 + 2}
		case 1:
			ev = trace.Event{Op: isa.OpFMul,
				A: math.Float64bits(1.5 + float64(r1)), B: math.Float64bits(2.5 + float64(r2))}
		case 2:
			ev = trace.Event{Op: isa.OpFDiv,
				A: math.Float64bits(3.5 + float64(r1)), B: math.Float64bits(1.5 + float64(r2))}
		default:
			ev = trace.Event{Op: isa.OpFSqrt, A: math.Float64bits(1.5 + float64(r1*512+r2))}
		}
		s.Emit(ev)
	}
}

// benchReplaySinkSet builds the fused geometry sweep: n independent
// paper-geometry table sets, each a distinct fan-out consumer.
func benchReplaySinkSet(n int) []trace.Sink {
	sinks := make([]trace.Sink, n)
	for i := range sinks {
		sinks[i] = experiments.NewTableSet(memo.Paper32x4(), memo.NonTrivialOnly)
	}
	return sinks
}

// measureReplay times rounds fused replays of the warmed workload at the
// given fan-out budget and returns the best round's delivered events/s
// and ns per delivered event.
func measureReplay(tb testing.TB, eng *memotable.Engine, fanout, rounds int) (eps, nsPerEvent float64) {
	tb.Helper()
	eng.SetFanOut(fanout)
	best := time.Duration(math.MaxInt64)
	for r := 0; r < rounds; r++ {
		sinks := benchReplaySinkSet(benchReplaySinks)
		start := time.Now()
		n, err := eng.ReplayAll(benchReplayKey, benchReplayCapture, sinks)
		elapsed := time.Since(start)
		if err != nil {
			tb.Fatalf("ReplayAll(fanout=%d): %v", fanout, err)
		}
		if n != benchReplayEvents {
			tb.Fatalf("replayed %d events, want %d", n, benchReplayEvents)
		}
		if elapsed < best {
			best = elapsed
		}
	}
	delivered := float64(benchReplayEvents) * benchReplaySinks
	return delivered / best.Seconds(), float64(best.Nanoseconds()) / delivered
}

func benchReplayRegime(b *testing.B, fanout int) {
	eng := memotable.NewEngine(benchReplaySinks)
	defer func() { _ = eng.Close() }()
	eng.SetFanOut(fanout)
	if err := eng.Warm(benchReplayKey, benchReplayCapture); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinks := benchReplaySinkSet(benchReplaySinks)
		if _, err := eng.ReplayAll(benchReplayKey, benchReplayCapture, sinks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*benchReplayEvents*benchReplaySinks/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkReplayDeliverySerial(b *testing.B)  { benchReplayRegime(b, 1) }
func BenchmarkReplayDeliveryFanout8(b *testing.B) { benchReplayRegime(b, benchReplaySinks) }

// benchReplayReport is the BENCH_replay.json schema.
type benchReplayReport struct {
	Workload string         `json:"workload"`
	Events   uint64         `json:"events"`
	Sinks    int            `json:"sinks"`
	CPUs     int            `json:"cpus"`
	Serial   benchReplayLeg `json:"serial"`
	Fanout   benchReplayLeg `json:"fanout"`
	Speedup  float64        `json:"speedup"`
}

// benchReplayLeg is one delivery regime's measurement.
type benchReplayLeg struct {
	EventsPerSec float64 `json:"events_per_sec"`
	NsPerEvent   float64 `json:"ns_per_event"`
	Workers      int     `json:"workers"`
	RingStalls   uint64  `json:"ring_stalls,omitempty"`
}

// TestBenchReplayFanout measures serial vs fan-out delivery on one
// warmed engine and emits BENCH_replay.json. Gated behind
// MEMOTABLE_BENCH_REPLAY so the ordinary test run stays fast.
func TestBenchReplayFanout(t *testing.T) {
	out := os.Getenv("MEMOTABLE_BENCH_REPLAY")
	if out == "" {
		t.Skip("set MEMOTABLE_BENCH_REPLAY=<path> to run the replay throughput bench")
	}
	eng := memotable.NewEngine(benchReplaySinks)
	defer func() { _ = eng.Close() }()
	if err := eng.Warm(benchReplayKey, benchReplayCapture); err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	serialEPS, serialNs := measureReplay(t, eng, 1, rounds)
	if eng.FanoutReplays() != 0 {
		t.Fatal("serial regime fanned out")
	}
	stalls0 := eng.RingStalls()
	fanEPS, fanNs := measureReplay(t, eng, benchReplaySinks, rounds)
	if eng.FanoutReplays() == 0 {
		t.Fatal("fan-out regime delivered serially")
	}

	rep := benchReplayReport{
		Workload: benchReplayKey,
		Events:   benchReplayEvents,
		Sinks:    benchReplaySinks,
		CPUs:     runtime.NumCPU(),
		Serial:   benchReplayLeg{EventsPerSec: serialEPS, NsPerEvent: serialNs, Workers: 1},
		Fanout: benchReplayLeg{EventsPerSec: fanEPS, NsPerEvent: fanNs,
			Workers: benchReplaySinks, RingStalls: eng.RingStalls() - stalls0},
		Speedup: fanEPS / serialEPS,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial: %.1fM events/s (%.1f ns/event); fan-out(%d): %.1fM events/s (%.1f ns/event); speedup %.2fx on %d CPU(s)",
		serialEPS/1e6, serialNs, benchReplaySinks, fanEPS/1e6, fanNs, rep.Speedup, rep.CPUs)

	// The CI contract: fan-out must not be slower than serial at 8 sinks.
	// 5% headroom absorbs scheduler noise; any real regression (ring
	// overhead outweighing parallel delivery) lands far below it.
	if fanEPS < 0.95*serialEPS {
		t.Errorf("fan-out regime slower than serial: %.1fM vs %.1fM events/s", fanEPS/1e6, serialEPS/1e6)
	}
}
