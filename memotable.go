// Package memotable is a library-level reproduction of "Accelerating
// Multi-Media Processing by Implementing Memoing in Multiplication and
// Division Units" (Citron, Feitelson, Rudolph; ASPLOS 1998).
//
// A MEMO-TABLE is a small cache-like lookup table attached to a
// multi-cycle computation unit (integer multiplier, floating-point
// multiplier, divider, square root). Operands are presented to the table
// and the unit in parallel: a tag hit returns the previously computed
// result in one cycle and aborts the unit; a miss costs nothing extra and
// the completed result is inserted for future reuse.
//
// This package is the public facade over the internal implementation:
//
//   - MEMO-TABLE construction and memo-enhanced units (NewTable, NewUnit);
//   - operand trace capture and replay in the role the paper's Shade
//     tracing played (Capture, Replay);
//   - the paper's full experiment suite (Tables 5–13, Figures 2–4) as a
//     declarative registry (Experiments, Run), with per-experiment text
//     via RunExperiment;
//   - the cycle simulator used for the speedup studies (cpu, via the
//     experiments drivers).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's.
package memotable

import (
	"context"
	"io"

	"memotable/internal/engine"
	"memotable/internal/experiments"
	"memotable/internal/fleet"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/provenance"
	"memotable/internal/report"
	"memotable/internal/service"
	"memotable/internal/trace"
	"memotable/internal/tracestore"
)

// Re-exported core types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Table is a MEMO-TABLE (§2.1 of the paper).
	Table = memo.Table
	// Config selects table geometry and tagging scheme.
	Config = memo.Config
	// Unit couples a computation unit with its MEMO-TABLE (Figure 1).
	Unit = memo.Unit
	// Stats carries a table's hit/miss/trivial counters.
	Stats = memo.Stats
	// TrivialPolicy selects trivial-operand handling (Table 9).
	TrivialPolicy = memo.TrivialPolicy
	// Outcome reports how a memo-enhanced operation completed.
	Outcome = memo.Outcome
	// Op is an operation class.
	Op = isa.Op
	// Probe is the instrumented arithmetic layer workloads compute
	// through.
	Probe = probe.Probe
	// Event is one dynamic operation in a trace.
	Event = trace.Event
	// Sink consumes a stream of trace events.
	Sink = trace.Sink
)

// Operation classes.
const (
	IMul  = isa.OpIMul
	FMul  = isa.OpFMul
	FDiv  = isa.OpFDiv
	FSqrt = isa.OpFSqrt
)

// Trivial-operation policies.
const (
	CacheAll       = memo.CacheAll
	NonTrivialOnly = memo.NonTrivialOnly
	Integrated     = memo.Integrated
)

// Outcomes.
const (
	Miss    = memo.Miss
	Hit     = memo.Hit
	Trivial = memo.Trivial
	Bypass  = memo.Bypass
)

// Shared is a multi-ported MEMO-TABLE serving several computation units
// (§2.3).
type Shared = memo.Shared

// NewShared wraps a table for multi-ported use.
func NewShared(table *Table, ports int) *Shared { return memo.NewShared(table, ports) }

// NewSharedStriped builds a multi-ported table whose sets are partitioned
// across independently locked stripes, the way separate banks of a
// multi-ported SRAM service separate ports. stripes <= 0 picks a bank
// count matched to the port count and geometry.
func NewSharedStriped(op Op, cfg Config, ports, stripes int) *Shared {
	return memo.NewSharedStriped(op, cfg, ports, stripes)
}

// Engine is the parallel experiment engine: a bounded worker pool with a
// tiered trace cache that captures each workload once and replays it to
// every table configuration — from memory within the byte budget
// (Engine.SetCacheLimit), from CRC-framed spill files on disk beyond it
// (Engine.SetTraceDir), and from decoded event blocks shared across
// replays of the same workload (Engine.SetBlockCache, on by default).
// Engine.ReplayAll feeds several configurations' sinks in one pass over
// the stream. Experiment output is bit-identical at any worker count,
// spill on or off, block cache on or off.
type Engine = engine.Engine

// CaptureFunc runs a workload, emitting its operand trace into a sink;
// it is what Engine.Replay captures and replays.
type CaptureFunc = engine.CaptureFunc

// NewEngine builds an engine with the given worker count; workers <= 0
// selects GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// IngestSession is a live trace ingestion session (Engine.NewIngest):
// an external producer pushes encoded v2 stream bytes as it generates
// them, complete frames replay incrementally into the session's sinks,
// and sealing settles the stream into the engine cache and the
// persistent trace store as if it had been captured locally.
type IngestSession = engine.IngestSession

// IngestOptions configures a live ingest session.
type IngestOptions = engine.IngestOptions

// IngestStats is a point-in-time view of an ingest session's progress.
type IngestStats = engine.IngestStats

// IngestResult reports what sealing an ingest session settled.
type IngestResult = engine.IngestResult

// ErrIngestBroken marks an ingest session that failed — corrupt frame,
// injected fault, torn tail at seal — and accepts no more bytes.
var ErrIngestBroken = engine.ErrIngestBroken

// LiveBank bundles the rolling instruments of a live ingest session —
// MEMO-TABLE banks, baseline and memo-enhanced cycle models, and a
// bounded-memory reuse-ratio sketch — behind one sink fan-out with
// typed report snapshots.
type LiveBank = experiments.LiveBank

// NewLiveBank builds a live bank with the paper's study defaults (the
// fast-FP machine, 32x4 tables, trivial operations excluded), seeding
// the sketch estimator deterministically.
func NewLiveBank(seed uint64) *LiveBank { return experiments.NewDefaultLiveBank(seed) }

// TraceStore is a persistent, content-addressed store of settled operand
// traces, shared across processes (Engine.SetStore): each workload is
// captured once per machine rather than once per process, and later runs
// replay its verified bytes without executing anything.
type TraceStore = tracestore.Store

// OpenTraceStore prepares dir as a persistent trace store, creating the
// directory if needed and sweeping unsealed temp files a dead process
// left behind.
func OpenTraceStore(dir string) (*TraceStore, error) { return tracestore.Open(dir) }

// Paper32x4 returns the paper's basic configuration: 32 entries in sets
// of 4, full-value tags.
func Paper32x4() Config { return memo.Paper32x4() }

// Infinite returns the idealized unbounded fully associative table.
func Infinite() Config { return memo.Infinite() }

// NewTable builds a MEMO-TABLE for an operation class.
func NewTable(op Op, cfg Config) *Table { return memo.New(op, cfg) }

// NewUnit wires a MEMO-TABLE to its computation unit. A nil compute
// function uses host arithmetic.
func NewUnit(table *Table, policy TrivialPolicy, compute func(a, b uint64) uint64) *Unit {
	return memo.NewUnit(table, policy, compute)
}

// NewProbe builds an instrumentation probe feeding the given sinks.
func NewProbe(sinks ...trace.Sink) *Probe { return probe.New(sinks...) }

// Capture runs an instrumented program and streams its operand trace to
// w in binary trace format v1, returning the event count.
func Capture(w io.Writer, run func(*Probe)) (uint64, error) {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	run(probe.New(tw))
	if err := tw.Flush(); err != nil {
		return tw.Count(), err
	}
	return tw.Count(), nil
}

// CaptureV2 is Capture writing trace format v2: events are grouped into
// CRC32C-checksummed frames (optionally DEFLATE-compressed), so torn or
// corrupted files are detected on read. Replay accepts both formats
// transparently.
func CaptureV2(w io.Writer, compress bool, run func(*Probe)) (uint64, error) {
	tw, err := trace.NewWriterV2(w, compress)
	if err != nil {
		return 0, err
	}
	run(probe.New(tw))
	if err := tw.Close(); err != nil {
		return tw.Count(), err
	}
	return tw.Count(), nil
}

// Replay streams a captured trace through MEMO-TABLEs built from cfg and
// returns the per-class hit statistics.
func Replay(r io.Reader, cfg Config, policy TrivialPolicy) (map[Op]Stats, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	set := experiments.NewTableSet(cfg, policy)
	if _, err := tr.ReplayBatch(set); err != nil {
		return nil, err
	}
	out := make(map[Op]Stats)
	for _, op := range experiments.MemoOps {
		if u := set.Unit(op); u != nil && u.TotalOps() > 0 {
			out[op] = u.Table().Stats()
		}
	}
	return out, nil
}

// Scale selects experiment input sizes.
type Scale = experiments.Scale

// Scales.
const (
	Tiny  = experiments.Tiny
	Quick = experiments.Quick
	Full  = experiments.Full
)

// Experiment is one registered table or figure of the evaluation: its
// name, title, measured operation classes, and plan function. The full
// registry lives in internal/experiments; every entry is runnable by
// name through Run.
type Experiment = experiments.Experiment

// Result is a typed experiment result tree; render it with RenderText or
// RenderJSON.
type Result = report.Result

// Experiments lists the runnable experiment names, sorted.
func Experiments() []string { return experiments.Names() }

// AllExperiments returns the registered experiments sorted by name.
func AllExperiments() []Experiment { return experiments.All() }

// Run executes a selection of experiments (all of them when names is
// empty) as one planned pass over the trace cache: every workload the
// selection demands is captured once and replayed once, feeding all
// subscribed experiments' sinks in a single fused pass. Results are
// returned in selection order. All unknown names are reported in one
// error.
func Run(eng *Engine, scale Scale, names ...string) ([]*Result, error) {
	return experiments.Run(eng, scale, names...)
}

// PassReport is the cell-level account of one replay pass: which
// workload cells failed, on which execution edge, and whether the pass
// was cut short by cancellation. RunContext returns one per invocation.
type PassReport = engine.PassReport

// CellError attributes one pass failure to the workload cell that
// observed it; its cause always wraps one of the sentinel errors below.
type CellError = engine.CellError

// RunError is one workload failure in renderer-ready form, carried by a
// degraded Result's Errs list and surfaced by both renderers.
type RunError = report.RunError

// ErrBadTrace reports a corrupt or truncated trace stream: bad magic,
// torn frame, CRC mismatch. Replay errors wrap it, so callers can
// distinguish corruption from plain I/O failure with errors.Is.
var ErrBadTrace = trace.ErrBadTrace

// The failure taxonomy: every error a degraded run reports wraps one of
// these sentinels, so callers classify with errors.Is.
var (
	// ErrCanceled marks work abandoned to context cancellation.
	ErrCanceled = engine.ErrCanceled
	// ErrCaptureFailed marks a workload whose capture errored or panicked.
	ErrCaptureFailed = engine.ErrCaptureFailed
	// ErrSpillIO marks spill-tier I/O that kept failing after retries.
	ErrSpillIO = engine.ErrSpillIO
	// ErrCorruptTrace marks a trace that failed verification even after
	// transparent re-capture.
	ErrCorruptTrace = engine.ErrCorruptTrace
	// ErrSinkPanic marks a measurement sink that panicked mid-replay.
	ErrSinkPanic = engine.ErrSinkPanic
)

// RunContext is Run with cooperative cancellation and degraded-mode
// results: workload failures do not abort the selection. Experiments
// untouched by any failure return exact Results; an experiment that
// demanded a failed workload returns a degraded Result carrying the
// RunErrors that poisoned it (rendered by RenderText and RenderJSON as
// an errors section). The PassReport is the engine's cell-level account
// of the pass; the error return is reserved for selection defects that
// prevent planning entirely.
func RunContext(ctx context.Context, eng *Engine, scale Scale, names ...string) ([]*Result, *PassReport, error) {
	return experiments.RunContext(ctx, eng, scale, names...)
}

// RenderText renders a result as the paper-style text table.
func RenderText(r *Result) string { return report.Text(r) }

// RenderJSON renders a result as indented JSON (NaN cells become null).
func RenderJSON(r *Result) ([]byte, error) { return report.JSON(r) }

// RunExperiment reproduces one of the paper's tables or figures on the
// reference serial path and returns its rendered text.
func RunExperiment(name string, scale Scale) (string, error) {
	return RunExperimentWith(engine.Serial(), name, scale)
}

// RunExperimentWith runs one experiment on the given engine and returns
// its rendered text. Sharing one engine across experiments shares its
// trace cache, so workloads common to several tables are executed once
// per process rather than once per table. Output is identical to
// RunExperiment for any worker count. To run several experiments with
// replay passes fused across them, use Run.
func RunExperimentWith(eng *Engine, name string, scale Scale) (string, error) {
	results, err := Run(eng, scale, name)
	if err != nil {
		return "", err
	}
	return report.Text(results[0]), nil
}

// ParseScale resolves the CLI and service spelling of a scale ("tiny",
// "quick", "full"; "" selects Quick).
func ParseScale(s string) (Scale, error) { return experiments.ParseScale(s) }

// RenderJSONArray renders a selection's results as the JSON array
// `memosim -json` prints — the byte layout the HTTP front-end serves
// and CI diffs against offline output.
func RenderJSONArray(results []*Result) ([]byte, error) { return report.JSONArray(results) }

// EngineStats is the flat snapshot of every engine counter and
// cache-shape figure (Engine.Stats). The name leaves Stats for the
// MEMO-TABLE hit counters, which carried it first.
type EngineStats = engine.Stats

// EngineTier is the narrow read-only view of one engine cache layer
// (Engine.Tiers): its name, entry count, and resident bytes.
type EngineTier = engine.Tier

// TierStats is the serializable form of one tier's view
// (Engine.TierStats).
type TierStats = engine.TierStats

// Budget is a hierarchical byte-budget accountant. The engine's root
// budget (Engine.Budget) bounds its whole trace cache; children
// (Budget.Child) nest tenant slices under it, so a tenant exhausting
// its slice degrades only its own workloads.
type Budget = engine.Budget

// BudgetAccountant is the reserve/commit/release seam the engine's
// cache tiers charge through.
type BudgetAccountant = engine.BudgetAccountant

// NewBudget builds a standalone root budget of limit bytes.
func NewBudget(limit int64) *Budget { return engine.NewBudget(limit) }

// WithBudget returns a context carrying a budget accountant; engine
// passes run under it charge their captures and decoded blocks to that
// accountant instead of the engine's root budget.
func WithBudget(ctx context.Context, acct BudgetAccountant) context.Context {
	return engine.WithBudget(ctx, acct)
}

// ErrClosed marks work submitted to an engine after Close.
var ErrClosed = engine.ErrClosed

// Service is the multi-tenant front-end over one shared engine: per-
// tenant sessions with nested byte budgets, admission control, and
// coalescing of identical concurrent selections. Serve it over HTTP
// with Service.Handler (the `memosim -serve` daemon).
type Service = service.Service

// ServiceConfig shapes a Service (admission bounds, tenant budgets,
// run timeout); zero values select defaults.
type ServiceConfig = service.Config

// ServiceSession is one tenant's handle on a Service.
type ServiceSession = service.Session

// ServiceStats is a snapshot of a Service's request flow.
type ServiceStats = service.Stats

// NewService builds a Service over an engine the caller configured;
// the Service owns the engine from here (Service.Close closes it).
func NewService(eng *Engine, cfg ServiceConfig) *Service { return service.New(eng, cfg) }

// ErrAdmission marks a request refused by the service's admission
// control: queue full, or no engine slot freed within the max wait.
var ErrAdmission = service.ErrAdmission

// FleetConfig shapes a sharded fleet run (`memosim -shards`): the worker
// executable, the shard count, the selection, and the supervision knobs
// (per-attempt timeout, bounded jittered retries).
type FleetConfig = fleet.Config

// FleetReport is a completed fleet run: per-shard outcomes plus the
// combined provenance root. Its merge methods reassemble output
// byte-identical to a single-process run for every clean cell.
type FleetReport = fleet.Report

// ShardManifest is one worker's verified output: its assignment, its
// rendered result cells, and the hash chain binding them.
type ShardManifest = fleet.Manifest

// RunFleet executes a selection across supervised worker subprocesses
// and returns the merged, provenance-verified report. Shard failures
// degrade their own cells; the error return is reserved for
// misconfiguration.
func RunFleet(ctx context.Context, cfg FleetConfig) (*FleetReport, error) {
	return fleet.Run(ctx, cfg)
}

// ErrProvenance marks fleet worker output that failed provenance
// verification — a tampered result cell, a dropped trace fingerprint, a
// stale shard assignment, or a forged root. Classify with errors.Is.
var ErrProvenance = provenance.ErrProvenance
