package memotable_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§3). Each benchmark runs its experiment end to end — trace
// generation, MEMO-TABLE simulation, cycle modelling — and logs the
// rendered table on the first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's reported rows. Shapes, not absolute numbers, are
// the reproduction target (see EXPERIMENTS.md). Ablation benchmarks for
// the design choices called out in DESIGN.md follow the per-table ones.

import (
	"math"
	"sync"
	"testing"

	"memotable"
	"memotable/internal/arith"
	"memotable/internal/experiments"
	"memotable/internal/imaging"
	"memotable/internal/isa"
	"memotable/internal/memo"
	"memotable/internal/probe"
	"memotable/internal/trace"
	"memotable/internal/workloads"
)

// benchScale keeps full-matrix experiments inside the benchmark budget;
// cmd/memosim -scale full runs the larger geometry.
const benchScale = memotable.Quick

// logOnce renders an experiment's output into the benchmark log exactly
// once per process.
var logged sync.Map

func logResult(b *testing.B, name, rendered string) {
	if _, dup := logged.LoadOrStore(name, true); !dup {
		b.Log("\n" + rendered)
	}
}

func benchExperiment(b *testing.B, name string, scale memotable.Scale) {
	for i := 0; i < b.N; i++ {
		out, err := memotable.RunExperiment(name, scale)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, name, out)
	}
}

// BenchmarkTable1 regenerates the processor latency table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", benchScale) }

// BenchmarkTable5 regenerates the Perfect-suite hit ratios (32/4 vs
// infinite).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5", benchScale) }

// BenchmarkTable6 regenerates the SPEC CFP95 hit ratios.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6", benchScale) }

// BenchmarkTable7 regenerates the Multi-Media hit ratios.
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7", benchScale) }

// BenchmarkTable8 regenerates the per-image entropy/hit-ratio table.
func BenchmarkTable8(b *testing.B) { benchExperiment(b, "table8", memotable.Tiny) }

// BenchmarkFigure2 regenerates the hit-ratio-vs-entropy fits.
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, "figure2", memotable.Tiny) }

// BenchmarkTable9 regenerates the trivial-operation policy comparison.
func BenchmarkTable9(b *testing.B) { benchExperiment(b, "table9", memotable.Tiny) }

// BenchmarkTable10 regenerates the mantissa-only tagging comparison.
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10", benchScale) }

// BenchmarkFigure3 regenerates the table-size sweep (8..8192 entries).
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, "figure3", memotable.Tiny) }

// BenchmarkFigure4 regenerates the associativity sweep (1..8 ways).
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, "figure4", memotable.Tiny) }

// BenchmarkTable11 regenerates the fdiv-memoization speedups.
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11", memotable.Tiny) }

// BenchmarkTable12 regenerates the fmul-memoization speedups.
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12", memotable.Tiny) }

// BenchmarkTable13 regenerates the combined fmul+fdiv speedups.
func BenchmarkTable13(b *testing.B) { benchExperiment(b, "table13", memotable.Tiny) }

// --- ablations ------------------------------------------------------------

// ablationInput is a shared high-entropy workload input, chosen so the
// 32-entry hit ratios sit mid-range where design deltas are visible.
func ablationInput() *imaging.Image {
	return imaging.Find("mandrill").Image.Decimate(96)
}

// measureApp runs one MM application over the ablation input against one
// table configuration and returns the fp-division and fp-multiplication
// hit ratios.
func measureApp(b *testing.B, appName string, cfg memo.Config) (fdiv, fmul float64) {
	b.Helper()
	app, err := workloads.Lookup(appName)
	if err != nil {
		b.Fatal(err)
	}
	ts, _ := experiments.Measure(
		experiments.ImageRun(app.Run, ablationInput()), cfg, memo.NonTrivialOnly)
	return ts.HitRatio(isa.OpFDiv), ts.HitRatio(isa.OpFMul)
}

// BenchmarkAblationCommutativeLookup quantifies §2.2's double compare on
// a stream where both operand orders genuinely occur: a Gram-matrix
// kernel computing v[i]*v[j] over all ordered pairs, the canonical
// symmetric-products workload. Our image applications keep fixed operand
// order at each call site, so this ablation uses the dedicated stream.
func BenchmarkAblationCommutativeLookup(b *testing.B) {
	img := ablationInput()
	vals := make([]float64, 48)
	for i := range vals {
		vals[i] = img.At(i%img.W, (i*7)%img.H, 0) + 1
	}
	run := func(cfg memo.Config) float64 {
		tab := memo.New(isa.OpFMul, cfg)
		for i := range vals {
			for j := range vals {
				if i == j {
					continue
				}
				a := math.Float64bits(vals[i])
				c := math.Float64bits(vals[j])
				tab.Access(a, c, func() uint64 {
					return math.Float64bits(vals[i] * vals[j])
				})
			}
		}
		return tab.Stats().HitRatio()
	}
	var withRatio, withoutRatio float64
	for i := 0; i < b.N; i++ {
		withRatio = run(memo.Config{Entries: 512, Ways: 4})
		off := memo.Config{Entries: 512, Ways: 4, NoCommutativeLookup: true}
		withoutRatio = run(off)
		if withoutRatio > withRatio+1e-9 {
			b.Fatalf("disabling commutative lookup raised the ratio: %.3f > %.3f",
				withoutRatio, withRatio)
		}
	}
	b.ReportMetric(withRatio, "fmul-hit/commutative")
	b.ReportMetric(withoutRatio, "fmul-hit/ordered-only")
}

// BenchmarkAblationMantissaTags quantifies §2.1's mantissa-only variation
// on a division-heavy application.
func BenchmarkAblationMantissaTags(b *testing.B) {
	var full, mant float64
	for i := 0; i < b.N; i++ {
		full, _ = measureApp(b, "vsurf", memo.Paper32x4())
		cfg := memo.Paper32x4()
		cfg.MantissaOnly = true
		mant, _ = measureApp(b, "vsurf", cfg)
	}
	b.ReportMetric(full, "fdiv-hit/full-tags")
	b.ReportMetric(mant, "fdiv-hit/mantissa-tags")
}

// BenchmarkAblationAssociativity quantifies the conflict-miss pathology
// Figure 4 discusses (alternating near-identical values thrash a
// direct-mapped table).
func BenchmarkAblationAssociativity(b *testing.B) {
	var direct, assoc4 float64
	for i := 0; i < b.N; i++ {
		direct, _ = measureApp(b, "vgauss", memo.Config{Entries: 32, Ways: 1})
		assoc4, _ = measureApp(b, "vgauss", memo.Config{Entries: 32, Ways: 4})
	}
	b.ReportMetric(direct, "fdiv-hit/direct-mapped")
	b.ReportMetric(assoc4, "fdiv-hit/4-way")
}

// --- microbenchmarks of the core mechanisms --------------------------------

// BenchmarkMemoTableAccess measures the per-operation cost of the 32/4
// lookup-insert protocol on a mixed hit/miss stream.
func BenchmarkMemoTableAccess(b *testing.B) {
	tab := memo.New(isa.OpFDiv, memo.Paper32x4())
	compute := func() uint64 { return 42 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := math.Float64bits(float64(i&63) + 0.5)
		tab.Access(a, math.Float64bits(3), compute)
	}
}

// BenchmarkMemoTableInfinite measures the unbounded-table variant.
func BenchmarkMemoTableInfinite(b *testing.B) {
	tab := memo.New(isa.OpFDiv, memo.Infinite())
	compute := func() uint64 { return 42 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := math.Float64bits(float64(i&1023) + 0.5)
		tab.Access(a, math.Float64bits(3), compute)
	}
}

// BenchmarkBoothMultiplier measures the bit-exact radix-4 Booth fp
// multiply.
func BenchmarkBoothMultiplier(b *testing.B) {
	var m arith.Multiplier
	x := 1.5
	for i := 0; i < b.N; i++ {
		x = m.MulFloat64(x, 1.0000000001)
	}
	sinkFloat = x
}

// BenchmarkSRTDividerExact measures the divider with exact quotient
// selection.
func BenchmarkSRTDividerExact(b *testing.B) {
	var d arith.Divider
	for i := 0; i < b.N; i++ {
		sinkFloat = d.DivFloat64(float64(i)+1.5, 3.25)
	}
}

// BenchmarkSRTDividerQST measures the divider with table-based quotient
// selection (the hardware-faithful path).
func BenchmarkSRTDividerQST(b *testing.B) {
	d := arith.Divider{QSel: arith.NewQST()}
	for i := 0; i < b.N; i++ {
		sinkFloat = d.DivFloat64(float64(i)+1.5, 3.25)
	}
}

// BenchmarkDigitRecurrenceSqrt measures the square-root unit.
func BenchmarkDigitRecurrenceSqrt(b *testing.B) {
	var s arith.Sqrter
	for i := 0; i < b.N; i++ {
		sinkFloat = s.SqrtFloat64(float64(i) + 2)
	}
}

// BenchmarkProbeOverhead measures the instrumentation layer's cost per
// emitted event.
func BenchmarkProbeOverhead(b *testing.B) {
	var c trace.Counter
	p := probe.New(&c)
	for i := 0; i < b.N; i++ {
		sinkFloat = p.FMul(1.5, 2.5)
	}
}

// BenchmarkTraceWrite measures binary trace encoding throughput.
func BenchmarkTraceWrite(b *testing.B) {
	w, err := trace.NewWriter(discard{})
	if err != nil {
		b.Fatal(err)
	}
	ev := trace.Event{Op: isa.OpFMul, A: 0x3FF8000000000000, B: 0x4004000000000000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// sinkFloat defeats dead-code elimination in microbenchmarks.
var sinkFloat float64

// --- engine benchmarks -----------------------------------------------------
//
// The serial per-table benchmarks above re-execute every workload from
// scratch each run (RunExperiment uses the serial reference engine). The
// benchmarks below drive the same experiments through the parallel
// trace-cached engine, in two regimes:
//
//   - *Parallel: a fresh engine per iteration. First touch of each
//     workload captures its operand trace; every further (workload ×
//     config) cell replays the cached bytes on the worker pool. This is
//     what `cmd/memosim -parallel N` does per invocation.
//   - *EngineCached: one engine shared across iterations, so after the
//     first iteration every cell is a pure replay — the steady state a
//     long-lived sweep session reaches.
//
// On a multi-core box (GOMAXPROCS >= 4) the Parallel variants beat the
// serial benchmarks well past 1.5x on figure3/table13, because the
// config-sweep cells replay concurrently instead of back to back. On a
// single hardware thread the win comes from trace caching alone: replay
// decodes varints instead of re-running the imaging kernels and bit-exact
// arithmetic units.

// benchEngineExperiment runs one experiment per iteration through eng
// (nil means a fresh parallel engine each iteration).
func benchEngineExperiment(b *testing.B, eng *memotable.Engine, name string, scale memotable.Scale) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := eng
		if e == nil {
			e = memotable.NewEngine(0)
		}
		out, err := memotable.RunExperimentWith(e, name, scale)
		if err != nil {
			b.Fatal(err)
		}
		logResult(b, name, out)
	}
}

// BenchmarkFigure3Parallel runs the table-size sweep on a cold parallel
// engine each iteration (capture once, replay 11 configs concurrently).
func BenchmarkFigure3Parallel(b *testing.B) {
	benchEngineExperiment(b, nil, "figure3", memotable.Tiny)
}

// BenchmarkFigure3EngineCached runs the sweep against a warm shared
// trace cache: every cell is a pure replay.
func BenchmarkFigure3EngineCached(b *testing.B) {
	eng := memotable.NewEngine(0)
	if _, err := memotable.RunExperimentWith(eng, "figure3", memotable.Tiny); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchEngineExperiment(b, eng, "figure3", memotable.Tiny)
}

// BenchmarkTable13Parallel runs the combined fmul+fdiv speedup study on a
// cold parallel engine each iteration.
func BenchmarkTable13Parallel(b *testing.B) {
	benchEngineExperiment(b, nil, "table13", memotable.Tiny)
}

// BenchmarkTable13EngineCached runs the speedup study against a warm
// shared trace cache.
func BenchmarkTable13EngineCached(b *testing.B) {
	eng := memotable.NewEngine(0)
	if _, err := memotable.RunExperimentWith(eng, "table13", memotable.Tiny); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchEngineExperiment(b, eng, "table13", memotable.Tiny)
}

// BenchmarkSpeedupSuiteSharedEngine runs tables 11-13 on one engine per
// iteration. The three studies share the same nine applications, so the
// engine captures each workload once and tables 12 and 13 run entirely
// from the trace cache — the cross-experiment reuse cmd/memosim gets when
// several -run targets share an invocation.
func BenchmarkSpeedupSuiteSharedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := memotable.NewEngine(0)
		for _, name := range []string{"table11", "table12", "table13"} {
			out, err := memotable.RunExperimentWith(eng, name, memotable.Tiny)
			if err != nil {
				b.Fatal(err)
			}
			logResult(b, name, out)
		}
	}
}

// BenchmarkSpeedupSuiteSerial is the baseline for the shared-engine
// benchmark: the same three studies, each re-executing its workloads.
func BenchmarkSpeedupSuiteSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"table11", "table12", "table13"} {
			out, err := memotable.RunExperiment(name, memotable.Tiny)
			if err != nil {
				b.Fatal(err)
			}
			logResult(b, name, out)
		}
	}
}

// BenchmarkEngineReplay measures the raw replay path: decoding one cached
// trace and feeding a sink, the unit of work the pool parallelizes.
func BenchmarkEngineReplay(b *testing.B) {
	eng := memotable.NewEngine(1)
	capture := func(p *probe.Probe) {
		for i := 0; i < 4096; i++ {
			sinkFloat = p.FMul(float64(i&127)+0.5, 3.25)
		}
	}
	run := func() {
		var c trace.Counter
		n, err := eng.Replay("bench", func(s trace.Sink) { capture(probe.New(s)) }, &c)
		if err != nil || n != 4096 {
			b.Fatalf("replay: n=%d err=%v", n, err)
		}
	}
	run() // capture once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(4096*b.N)/b.Elapsed().Seconds(), "events/s")
}

// benchMatrix runs the whole evaluation matrix (every experiment, tiny
// scale) on one engine per iteration, configured by the caller.
func benchMatrix(b *testing.B, workers int, configure func(b *testing.B, eng *memotable.Engine)) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := memotable.NewEngine(workers)
		configure(b, eng)
		b.StartTimer()
		for _, name := range memotable.Experiments() {
			if _, err := memotable.RunExperimentWith(eng, name, memotable.Tiny); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
}

// BenchmarkEvaluationMatrixCached is the baseline: every capture fits
// the default memory budget, the decoded-block tier is on, and the
// drivers replay each workload in fused multi-config passes — but each
// experiment still runs as its own invocation, so a workload shared by
// several experiments is replayed once per experiment.
func BenchmarkEvaluationMatrixCached(b *testing.B) {
	benchMatrix(b, 8, func(*testing.B, *memotable.Engine) {})
}

// benchFusedMatrix runs the whole registry through one planned
// memotable.Run pass per iteration: the cross-experiment planner
// captures each demanded workload once and replays it once, feeding
// every subscribed experiment's sinks together.
func benchFusedMatrix(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng := memotable.NewEngine(workers)
		b.StartTimer()
		if _, err := memotable.Run(eng, memotable.Tiny); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		eng.Close()
		b.StartTimer()
	}
}

// BenchmarkEvaluationMatrixFused is the planner path at 8 workers;
// compare against BenchmarkEvaluationMatrixCached, which runs the same
// matrix one experiment at a time.
func BenchmarkEvaluationMatrixFused(b *testing.B) { benchFusedMatrix(b, 8) }

// BenchmarkEvaluationMatrixFused1Worker is the planner path single
// threaded; compare against BenchmarkEvaluationMatrix1Worker.
func BenchmarkEvaluationMatrixFused1Worker(b *testing.B) { benchFusedMatrix(b, 1) }

// BenchmarkEvaluationMatrixNoBlockCache ablates the decoded-block tier:
// every fused replay re-decodes the workload's encoded bytes.
func BenchmarkEvaluationMatrixNoBlockCache(b *testing.B) {
	benchMatrix(b, 8, func(b *testing.B, eng *memotable.Engine) {
		eng.SetBlockCache(false)
	})
}

// BenchmarkEvaluationMatrix1Worker is the single-threaded matrix with the
// block tier on, isolating the decode-once win from pool parallelism.
func BenchmarkEvaluationMatrix1Worker(b *testing.B) {
	benchMatrix(b, 1, func(*testing.B, *memotable.Engine) {})
}

// BenchmarkEvaluationMatrix1WorkerNoBlockCache is the single-threaded
// matrix re-decoding bytes on every replay.
func BenchmarkEvaluationMatrix1WorkerNoBlockCache(b *testing.B) {
	benchMatrix(b, 1, func(b *testing.B, eng *memotable.Engine) {
		eng.SetBlockCache(false)
	})
}

// BenchmarkEvaluationMatrixSpillTier models a full-scale run whose
// captures overflow memory with the disk tier available: a 1-byte budget
// forces every trace into a spill file, and all replays stream from
// disk.
func BenchmarkEvaluationMatrixSpillTier(b *testing.B) {
	benchMatrix(b, 8, func(b *testing.B, eng *memotable.Engine) {
		eng.SetCacheLimit(1)
		eng.SetTraceDir(b.TempDir())
	})
}

// BenchmarkEvaluationMatrixDeclineTier models the same overflow on PR
// 1's engine: no disk tier, so every replay request re-executes its
// workload under the process-wide capture lock.
func BenchmarkEvaluationMatrixDeclineTier(b *testing.B) {
	benchMatrix(b, 8, func(b *testing.B, eng *memotable.Engine) {
		eng.SetCacheLimit(1)
	})
}

// --- replay-mode benchmarks ------------------------------------------------
//
// BenchmarkReplayModes isolates the tentpole's three regimes on one real
// MM workload trace (vdiff over the ablation input) swept across the 11
// Figure 3 configurations:
//
//   - bytes-per-cell: block tier off, one Replay per configuration — the
//     pre-block-cache engine's cost: 11 full varint decodes per sweep.
//   - blocks-per-cell: block tier on, one Replay per configuration — one
//     decode, 11 block walks.
//   - fused: one ReplayAll feeding all 11 configurations in a single pass
//     over the decoded blocks.
func BenchmarkReplayModes(b *testing.B) {
	cfgs := make([]memo.Config, len(experiments.Figure3Sizes))
	for i, n := range experiments.Figure3Sizes {
		ways := 4
		if n < 4 {
			ways = n
		}
		cfgs[i] = memo.Config{Entries: n, Ways: ways}
	}
	run := func(b *testing.B, blockCache, fused bool) {
		capture, events := spillBenchCapture(b)
		eng := memotable.NewEngine(1)
		defer eng.Close()
		eng.SetBlockCache(blockCache)
		var c trace.Counter
		if _, err := eng.Replay("bench", capture, &c); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinks := make([]trace.Sink, len(cfgs))
			for j, cfg := range cfgs {
				sinks[j] = experiments.NewTableSet(cfg, memo.NonTrivialOnly)
			}
			if fused {
				if _, err := eng.ReplayAll("bench", capture, sinks); err != nil {
					b.Fatal(err)
				}
			} else {
				for _, s := range sinks {
					if _, err := eng.Replay("bench", capture, s); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.ReportMetric(float64(events)*float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(),
			"events/s")
	}
	b.Run("bytes-per-cell", func(b *testing.B) { run(b, false, false) })
	b.Run("blocks-per-cell", func(b *testing.B) { run(b, true, false) })
	b.Run("fused", func(b *testing.B) { run(b, true, true) })
}

// spillBenchCapture is a real MM workload (vdiff over the ablation
// input), so the decline path below pays what it pays in practice: the
// imaging kernel re-executes, not just a stream re-emission.
func spillBenchCapture(b *testing.B) (memotable.CaptureFunc, uint64) {
	b.Helper()
	app, err := workloads.Lookup("vdiff")
	if err != nil {
		b.Fatal(err)
	}
	img := ablationInput()
	var c trace.Counter
	capture := func(s trace.Sink) {
		as := imaging.NewAddressSpace()
		app.Run(probe.New(s), as, as.Clone(img))
	}
	capture(&c)
	return capture, c.Total()
}

// BenchmarkEngineSpillReplay measures the disk tier on a real workload:
// the capture exceeds the memory budget and every request streams from a
// CRC-framed spill file (verify pass + frame decode).
func BenchmarkEngineSpillReplay(b *testing.B) {
	capture, events := spillBenchCapture(b)
	eng := memotable.NewEngine(1)
	eng.SetCacheLimit(1) // force every capture past the memory tier
	eng.SetTraceDir(b.TempDir())
	defer eng.Close()
	run := func() {
		var c trace.Counter
		n, err := eng.Replay("bench", capture, &c)
		if err != nil || n != events {
			b.Fatalf("replay: n=%d want=%d err=%v", n, events, err)
		}
	}
	run() // capture and spill once
	if eng.SpilledTraces() != 1 {
		b.Fatal("capture did not spill")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkEngineDeclineReexecute measures the path spilling replaces:
// the capture is declined for space and every request re-executes the
// workload under the process-wide capture lock — PR 1's only recourse
// when a trace outgrew the budget.
func BenchmarkEngineDeclineReexecute(b *testing.B) {
	capture, events := spillBenchCapture(b)
	eng := memotable.NewEngine(1)
	eng.SetCacheLimit(1) // decline every capture; no spill tier
	run := func() {
		var c trace.Counter
		n, err := eng.Replay("bench", capture, &c)
		if err != nil || n != events {
			b.Fatalf("replay: n=%d want=%d err=%v", n, events, err)
		}
	}
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkExtensionSqrt regenerates the square-root memoization study
// (paper §4 future work).
func BenchmarkExtensionSqrt(b *testing.B) { benchExperiment(b, "sqrt-extension", memotable.Tiny) }

// BenchmarkExtensionRecip regenerates the reciprocal-cache baseline
// comparison (Oberman & Flynn, §1.1).
func BenchmarkExtensionRecip(b *testing.B) { benchExperiment(b, "recip-comparison", memotable.Tiny) }

// BenchmarkExtensionReuse regenerates the reuse-buffer comparison
// (Sodani & Sohi, §1.1).
func BenchmarkExtensionReuse(b *testing.B) { benchExperiment(b, "reuse-comparison", memotable.Tiny) }
